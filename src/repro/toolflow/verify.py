"""Suite-level verification: certify benchmark solutions end to end.

:func:`run_verify` re-parallelizes each requested (benchmark, platform,
approach, backend) cell with solve-time ILP replay enabled
(``ParallelizeOptions.verify``) and pushes the result through the full
certification pipeline (:func:`repro.analysis.certifier.certify_run`):
structural validation, static race detection, certificate replay,
happens-before trace sanitizing and mapping/annotation lint.

Running the same cell on *both* ILP backends doubles as a solver
cross-check: the bounded-variable simplex and the scipy backend must
agree on the optimal execution time of every cell, so a silent presolve
or branch-and-bound bug in either shows up as a
``certificate.backend-divergence`` diagnostic even when both solutions
individually certify clean.

All solves of one backend share one :class:`SolverService` (pool, memo
table, on-disk cache), so a CI sweep over the full Table-I set stays
cheap once the cache is warm.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.certifier import certify_run
from repro.analysis.diagnostics import REPORT_SCHEMA, Diagnostic, Report
from repro.bench_suite import benchmark_names
from repro.core.parallelize import ParallelizeOptions, shared_service
from repro.core.schedule import drive
from repro.platforms import config_a, config_b
from repro.platforms.description import Platform
from repro.toolflow.experiments import _make_parallelizer, prepare_benchmark

SUITE_SCHEMA = "repro-verify-suite-v1"

#: Relative agreement required between the two backends' optimal
#: execution times. Both prove optimality on these instances; anything
#: beyond rounding noise means one of them mis-solved.
BACKEND_DIVERGENCE_RTOL = 1e-6

_PLATFORM_FACTORIES = {
    "config-a": config_a,
    "config-b": config_b,
}


@dataclass
class VerifyCell:
    """One certified (benchmark, platform, approach, backend) run."""

    benchmark: str
    platform: str
    approach: str
    backend: str
    report: Report
    exec_time_us: float
    wall_seconds: float

    @property
    def ok(self) -> bool:
        return self.report.ok

    def to_dict(self) -> Dict[str, Any]:
        return {
            "benchmark": self.benchmark,
            "platform": self.platform,
            "approach": self.approach,
            "backend": self.backend,
            "exec_time_us": round(self.exec_time_us, 6),
            "wall_seconds": round(self.wall_seconds, 6),
            "verify_seconds": round(self.report.total_seconds, 6),
            "report": self.report.to_dict(),
        }


@dataclass
class VerifySuite:
    """Outcome of one :func:`run_verify` sweep."""

    cells: List[VerifyCell] = field(default_factory=list)
    #: Cross-backend disagreement diagnostics (suite-level: they belong
    #: to a cell *pair*, not to any single run).
    divergences: List[Diagnostic] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def num_diagnostics(self) -> int:
        return sum(len(cell.report.diagnostics) for cell in self.cells) + len(
            self.divergences
        )

    @property
    def ok(self) -> bool:
        return self.num_diagnostics == 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SUITE_SCHEMA,
            "report_schema": REPORT_SCHEMA,
            "ok": self.ok,
            "num_cells": len(self.cells),
            "num_diagnostics": self.num_diagnostics,
            "wall_seconds": round(self.wall_seconds, 6),
            "cells": [cell.to_dict() for cell in self.cells],
            "divergences": [diag.to_dict() for diag in self.divergences],
        }

    def render_text(self) -> str:
        lines = []
        for cell in self.cells:
            lines.append(cell.report.render_text())
        for diag in self.divergences:
            lines.append(f"  {diag}")
        verdict = "OK" if self.ok else "FAILED"
        lines.append(
            f"verify suite: {verdict} ({len(self.cells)} cells, "
            f"{self.num_diagnostics} diagnostics, {self.wall_seconds:.1f}s)"
        )
        return "\n".join(lines)


def resolve_verify_platforms(
    name: str, scenario: str = "accelerator"
) -> List[Platform]:
    """Resolve ``config-a`` / ``config-b`` / ``both`` to platform objects."""
    if name == "both":
        names = sorted(_PLATFORM_FACTORIES)
    elif name in _PLATFORM_FACTORIES:
        names = [name]
    else:
        raise SystemExit(
            f"unknown platform {name!r}; choose from "
            f"{sorted(_PLATFORM_FACTORIES)} or 'both'"
        )
    return [_PLATFORM_FACTORIES[key](scenario) for key in names]


def resolve_verify_benchmarks(spec: Optional[str]) -> List[str]:
    """Parse a comma-separated benchmark list, rejecting unknown names."""
    known = benchmark_names()
    if not spec:
        return list(known)
    names = [part.strip() for part in spec.split(",") if part.strip()]
    unknown = sorted(set(names) - set(known))
    if unknown:
        raise SystemExit(
            f"unknown benchmark(s) {', '.join(map(repr, unknown))}; "
            f"choose from {', '.join(known)}"
        )
    return names


def run_verify(
    benchmarks: Optional[Sequence[str]] = None,
    platforms: Optional[Sequence[Platform]] = None,
    approaches: Sequence[str] = ("heterogeneous",),
    backends: Sequence[str] = ("scipy", "bnb"),
    parallelize_options: Optional[ParallelizeOptions] = None,
) -> VerifySuite:
    """Certify every requested cell; see the module docstring."""
    names = list(benchmarks or benchmark_names())
    plats = list(platforms or resolve_verify_platforms("both"))
    base = parallelize_options or ParallelizeOptions()
    suite = VerifySuite()
    start = time.perf_counter()

    # (benchmark, platform, approach) -> backend -> optimal exec time.
    times: Dict[Tuple[str, str, str], Dict[str, float]] = {}
    for backend in backends:
        options = replace(base, backend=backend, verify=True)
        with shared_service(options) as bound:
            service = bound.service
            assert service is not None
            sessions = []
            for name in names:
                for platform in plats:
                    for approach in approaches:
                        _program, htg = prepare_benchmark(
                            name, platform.total_cores
                        )
                        parallelizer = _make_parallelizer(
                            approach, platform, bound
                        )
                        sessions.append(
                            (
                                name,
                                platform,
                                approach,
                                parallelizer.start_session(htg, service),
                            )
                        )
            drive([entry[3] for entry in sessions], service)
            for name, platform, approach, session in sessions:
                cell_start = time.perf_counter()
                result = session.result
                report = certify_run(
                    result,
                    subject={
                        "benchmark": name,
                        "platform": platform.name,
                        "approach": approach,
                        "backend": backend,
                    },
                )
                suite.cells.append(
                    VerifyCell(
                        benchmark=name,
                        platform=platform.name,
                        approach=approach,
                        backend=backend,
                        report=report,
                        exec_time_us=result.best.exec_time_us,
                        wall_seconds=result.wall_seconds
                        + (time.perf_counter() - cell_start),
                    )
                )
                times.setdefault((name, platform.name, approach), {})[
                    backend
                ] = result.best.exec_time_us

    suite.divergences.extend(_backend_divergences(times))
    suite.wall_seconds = time.perf_counter() - start
    return suite


def _backend_divergences(
    times: Dict[Tuple[str, str, str], Dict[str, float]],
) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    for (name, platform, approach), by_backend in sorted(times.items()):
        if len(by_backend) < 2:
            continue
        values = sorted(by_backend.items())
        ref_backend, ref = values[0]
        for backend, value in values[1:]:
            tol = BACKEND_DIVERGENCE_RTOL * max(abs(ref), abs(value), 1.0)
            if abs(value - ref) <= tol:
                continue
            diags.append(
                Diagnostic(
                    "certificate",
                    "certificate.backend-divergence",
                    f"{name} on {platform} ({approach}): backends disagree "
                    f"on the optimal execution time "
                    f"({ref_backend}={ref:.6f}us, {backend}={value:.6f}us)",
                    context={
                        "benchmark": name,
                        "platform": platform,
                        "approach": approach,
                        "backends": {ref_backend: ref, backend: value},
                    },
                )
            )
    return diags
