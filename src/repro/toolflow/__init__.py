"""End-to-end tool flow and paper-experiment harness.

Mirrors the paper's Figure 6 tool flow: sequential ANSI-C + platform
description in; AHTG extraction; ILP-based parallelization; annotated
source + pre-mapping specification out; evaluation on the MPSoC
simulator. :mod:`repro.toolflow.experiments` regenerates every table and
figure of the paper's evaluation section.
"""

from repro.toolflow.flow import FlowResult, ToolFlow, parallelize_source

__all__ = ["FlowResult", "ToolFlow", "parallelize_source"]
