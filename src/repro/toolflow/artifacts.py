"""Artifact bundles: write every tool-flow output to a directory.

One call produces the full set of files a user of the paper's tool flow
would keep from a run:

```
outdir/
  annotated.c        transformed source with #pragma repro task regions
  openmp.c           OpenMP-sections rendering of the same solution
  premapping.json    task -> processor-class pre-mapping specification
  htg.dot            the AHTG (graphviz)
  taskgraph.dot      the flattened task DAG, colored by class
  schedule.txt       simulated schedule: Gantt + utilization + task table
  report.txt         summary: platform, times, speedups, ILP statistics
  parallelism.txt    structural parallelism metrics and bounds
```
"""

from __future__ import annotations

import pathlib
from typing import Dict, Optional, Union

from repro.codegen.annotate import annotate_solution
from repro.codegen.mapping_spec import mapping_spec_json
from repro.codegen.openmp import emit_openmp
from repro.core.flatten import flatten_solution
from repro.htg.metrics import analyze_parallelism, render_report
from repro.htg.visualize import flat_graph_to_dot, htg_to_dot
from repro.simulator.engine import SimOptions, simulate_graph
from repro.simulator.trace import render_gantt, render_utilization, schedule_table
from repro.toolflow.flow import FlowResult


def write_artifacts(
    outcome: FlowResult,
    outdir: Union[str, pathlib.Path],
    sim_options: Optional[SimOptions] = None,
) -> Dict[str, pathlib.Path]:
    """Write the artifact bundle for a completed tool-flow run.

    Returns a mapping of artifact name to written path.
    """
    outdir = pathlib.Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    result = outcome.result
    platform = result.platform

    graph = flatten_solution(
        result.best, platform, class_blind=result.approach == "homogeneous"
    )
    sim = simulate_graph(graph, platform, sim_options)

    written: Dict[str, pathlib.Path] = {}

    def emit(name: str, text: str) -> None:
        path = outdir / name
        path.write_text(text + "\n", encoding="utf-8")
        written[name] = path

    emit("annotated.c", annotate_solution(result, program=outcome.program))
    emit("openmp.c", emit_openmp(result, program=outcome.program))
    emit("premapping.json", mapping_spec_json(result))
    emit("htg.dot", htg_to_dot(outcome.htg))
    emit("taskgraph.dot", flat_graph_to_dot(graph))
    emit(
        "schedule.txt",
        "\n\n".join(
            [
                render_gantt(sim, graph),
                render_utilization(sim),
                schedule_table(sim, graph),
            ]
        ),
    )
    emit(
        "parallelism.txt",
        render_report(analyze_parallelism(outcome.htg), platform),
    )

    stats = result.stats
    report_lines = [
        f"approach            : {result.approach}",
        f"platform            : {platform.describe()}",
        f"sequential          : {outcome.evaluation.sequential_us:,.1f} us",
        f"parallel (simulated): {sim.makespan_us:,.1f} us",
        f"speedup             : {outcome.evaluation.sequential_us / sim.makespan_us:.2f}x "
        f"(limit {platform.theoretical_speedup():.2f}x)",
        f"model estimate      : {result.best.exec_time_us:,.1f} us "
        f"({result.estimated_speedup:.2f}x)",
        f"energy (simulated)  : {sim.energy_nj / 1e3:,.1f} uJ",
        f"tasks               : {result.best.num_tasks} "
        f"(+procs {result.best.used_procs})",
        f"ILPs solved         : {stats.num_ilps} "
        f"({stats.total_variables:,} vars, {stats.total_constraints:,} constraints, "
        f"{stats.total_solve_seconds:.1f}s)",
    ]
    emit("report.txt", "\n".join(report_lines))
    return written
