"""Text rendering of experiment results (the repo's "figures")."""

from __future__ import annotations

from typing import List, Optional

from repro.ilp.stats import SuiteStats
from repro.toolflow.experiments import FigureResult, Table1Result

_FIGURE_TITLES = {
    "7a": "Fig. 7(a)  Platform (A) 100/250/500/500 MHz — Accelerator scenario (I)",
    "7b": "Fig. 7(b)  Platform (A) 100/250/500/500 MHz — Slower-cores scenario (II)",
    "8a": "Fig. 8(a)  Platform (B) 200/200/500/500 MHz — Accelerator scenario (I)",
    "8b": "Fig. 8(b)  Platform (B) 200/200/500/500 MHz — Slower-cores scenario (II)",
}


def render_figure(result: FigureResult, bar_width: int = 40) -> str:
    """Render a figure result as an aligned table with ASCII speedup bars."""
    lines: List[str] = []
    title = _FIGURE_TITLES.get(result.figure, f"Figure {result.figure}")
    lines.append(title)
    limit = result.theoretical_limit
    lines.append(f"theoretical speedup limit: {limit:.2f}x (dashed line)")
    lines.append("")
    header = f"{'benchmark':<14} {'homogeneous':>12} {'heterogeneous':>14}   speedup bars (#homo, =hetero)"
    lines.append(header)
    lines.append("-" * len(header))
    scale = bar_width / max(limit, 1e-9)
    for name, by_approach in result.runs.items():
        homo = by_approach.get("homogeneous")
        hetero = by_approach.get("heterogeneous")
        homo_s = f"{homo.speedup:.2f}x" if homo else "-"
        hetero_s = f"{hetero.speedup:.2f}x" if hetero else "-"
        bar = ""
        if homo and hetero:
            h_len = max(0, min(bar_width, round(homo.speedup * scale)))
            x_len = max(0, min(bar_width, round(hetero.speedup * scale)))
            bar = "#" * h_len + "\n" + " " * (14 + 12 + 14 + 5) + "=" * x_len
        lines.append(f"{name:<14} {homo_s:>12} {hetero_s:>14}   {bar}")
    lines.append("-" * len(header))
    homo_avg = result.average_speedup("homogeneous")
    hetero_avg = result.average_speedup("heterogeneous")
    lines.append(
        f"{'average':<14} {homo_avg:>11.2f}x {hetero_avg:>13.2f}x   (paper: see Section VI-A)"
    )
    lines.extend(render_suite(result.suite))
    return "\n".join(lines)


def render_suite(suite: Optional[SuiteStats]) -> List[str]:
    """Shared-service telemetry footer of a multi-cell experiment run.

    Empty when the result was served entirely from the run cache (no
    service was spun up); the dispatch line appears only for pooled runs.
    """
    if suite is None:
        return []
    p = suite.pool
    lines = [
        "",
        f"suite     : {suite.cells} cells in {suite.wall_seconds:.1f}s wall, "
        f"jobs={p.jobs}, {p.dispatched} pooled / {p.inline_solves} inline "
        f"solves, {p.cache_hits} cache hits",
    ]
    if p.jobs > 1:
        lines.append(
            f"dispatch  : {p.batches} batches (max size {p.max_batch_size}), "
            f"peak queue {p.peak_queue_depth}, peak {p.peak_in_flight} in "
            f"flight, {p.bytes_shipped:,} bytes shipped, "
            f"worker utilization {100.0 * suite.worker_utilization:.0f}%"
        )
    if p.heuristic_solves or p.degraded_solves:
        lines.append(
            f"portfolio : {p.heuristic_solves} heuristic solves, "
            f"{p.incumbents_injected} incumbents injected, "
            f"{p.races_won_by_heuristic} races won by heuristic, "
            f"{p.degraded_solves} degraded, "
            f"mean gap {100.0 * p.mean_gap:.1f}%"
        )
    return lines


def render_table1(table: Table1Result) -> str:
    """Render Table I: per-benchmark ILP statistics and factors."""
    lines: List[str] = []
    lines.append("TABLE I. STATISTICS OF ILP-BASED PARALLELIZATION ALGORITHMS")
    header = (
        f"{'benchmark':<13}|{'Homogeneous approach [6]':^37}|"
        f"{'New Heterogeneous approach':^37}|{'Factor':^27}"
    )
    sub = (
        f"{'':<13}|{'time(s)':>8}{'#ILPs':>7}{'#Var':>10}{'#Constr':>11} |"
        f"{'time(s)':>8}{'#ILPs':>7}{'#Var':>10}{'#Constr':>11} |"
        f"{'time':>6}{'#ILPs':>7}{'#Var':>7}{'#Con':>6}"
    )
    lines.append(header)
    lines.append(sub)
    lines.append("-" * len(sub))

    def render_row(row) -> str:
        h = row.homogeneous
        x = row.heterogeneous
        f = row.factor
        return (
            f"{row.benchmark:<13}|"
            f"{h.total_solve_seconds:>8.2f}{h.num_ilps:>7}{h.total_variables:>10,}{h.total_constraints:>11,} |"
            f"{x.total_solve_seconds:>8.2f}{x.num_ilps:>7}{x.total_variables:>10,}{x.total_constraints:>11,} |"
            f"{f.time_factor:>5.1f}x{f.ilp_factor:>6.1f}x{f.variable_factor:>6.1f}x{f.constraint_factor:>5.1f}x"
        )

    for row in table.rows:
        lines.append(render_row(row))
    avg = table.averages()
    if avg is not None:
        lines.append("-" * len(sub))
        lines.append(render_row(avg))
    lines.extend(render_suite(table.suite))
    return "\n".join(lines)
