"""Parameter sweeps: speedup as a function of platform parameters.

The paper evaluates two fixed platforms; a natural follow-up question for
a user adopting the tool is *where* heterogeneity-aware parallelization
pays off. This module sweeps one platform parameter at a time and
collects both approaches' speedups:

* :func:`sweep_frequency_ratio` — fast/slow clock ratio at fixed total
  compute (the big.LITTLE design space);
* :func:`sweep_core_count` — number of fast helper cores;
* :func:`sweep_tco` — task-creation overhead (granularity threshold);
* :func:`sweep_bus_bandwidth` — interconnect bandwidth (communication
  sensitivity).

Each sweep returns a :class:`SweepResult` with aligned series, rendered
by :func:`render_sweep` as a text table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.parallelize import (
    HeterogeneousParallelizer,
    HomogeneousParallelizer,
    ParallelizeOptions,
    shared_service,
)
from repro.htg.graph import HTG
from repro.platforms.description import Interconnect, Platform, ProcessorClass
from repro.simulator.run import evaluate_solution


@dataclass
class SweepPoint:
    """One sweep sample."""

    value: float
    heterogeneous_speedup: float
    homogeneous_speedup: float
    theoretical_limit: float


@dataclass
class SweepResult:
    """A completed sweep."""

    parameter: str
    points: List[SweepPoint] = field(default_factory=list)

    def series(self, approach: str) -> List[float]:
        key = f"{approach}_speedup"
        return [getattr(p, key) for p in self.points]

    def values(self) -> List[float]:
        return [p.value for p in self.points]


def _measure(htg: HTG, platform: Platform,
             options: Optional[ParallelizeOptions] = None) -> SweepPoint:
    hetero = HeterogeneousParallelizer(platform, options).parallelize(htg)
    homo = HomogeneousParallelizer(platform, options).parallelize(htg)
    return SweepPoint(
        value=0.0,
        heterogeneous_speedup=evaluate_solution(hetero).speedup,
        homogeneous_speedup=evaluate_solution(homo).speedup,
        theoretical_limit=platform.theoretical_speedup(),
    )


# Every sweep loop below runs inside ``shared_service(options)``: all
# sweep points execute against one long-lived solver service, sharing its
# process pool, in-memory memo table and on-disk cache — identical ILPs
# across neighboring sweep points (unchanged subtrees) are answered from
# the memo instead of being re-solved.


def sweep_frequency_ratio(
    htg: HTG,
    ratios: Sequence[float] = (1.0, 1.5, 2.5, 4.0, 6.0),
    slow_mhz: float = 200.0,
    slow_count: int = 2,
    fast_count: int = 2,
    tco_us: float = 25.0,
    options: Optional[ParallelizeOptions] = None,
) -> SweepResult:
    """Vary the fast/slow clock ratio (main core = slow)."""
    result = SweepResult("frequency_ratio")
    with shared_service(options) as options:
        for ratio in ratios:
            platform = Platform(
                name=f"ratio-{ratio:g}",
                processor_classes=(
                    ProcessorClass("slow", slow_mhz, slow_count),
                    ProcessorClass("fast", slow_mhz * ratio, fast_count),
                ),
                task_creation_overhead_us=tco_us,
                main_class_name="slow",
            )
            point = _measure(htg, platform, options)
            point.value = ratio
            result.points.append(point)
    return result


def sweep_core_count(
    htg: HTG,
    counts: Sequence[int] = (1, 2, 3, 4, 6),
    slow_mhz: float = 100.0,
    fast_mhz: float = 500.0,
    tco_us: float = 25.0,
    options: Optional[ParallelizeOptions] = None,
) -> SweepResult:
    """Vary the number of fast helper cores next to one slow main core."""
    result = SweepResult("fast_core_count")
    with shared_service(options) as options:
        for count in counts:
            platform = Platform(
                name=f"helpers-{count}",
                processor_classes=(
                    ProcessorClass("slow", slow_mhz, 1),
                    ProcessorClass("fast", fast_mhz, count),
                ),
                task_creation_overhead_us=tco_us,
                main_class_name="slow",
            )
            point = _measure(htg, platform, options)
            point.value = float(count)
            result.points.append(point)
    return result


def sweep_tco(
    htg: HTG,
    base_platform: Platform,
    tcos_us: Sequence[float] = (0.0, 10.0, 25.0, 100.0, 400.0),
    options: Optional[ParallelizeOptions] = None,
) -> SweepResult:
    """Vary the task-creation overhead on a fixed platform."""
    from dataclasses import replace

    result = SweepResult("task_creation_overhead_us")
    with shared_service(options) as options:
        for tco in tcos_us:
            platform = replace(base_platform, task_creation_overhead_us=tco)
            point = _measure(htg, platform, options)
            point.value = tco
            result.points.append(point)
    return result


def sweep_bus_bandwidth(
    htg: HTG,
    base_platform: Platform,
    bandwidths: Sequence[float] = (25.0, 100.0, 400.0, 1600.0),
    options: Optional[ParallelizeOptions] = None,
) -> SweepResult:
    """Vary the shared-bus bandwidth (bytes/µs) on a fixed platform."""
    from dataclasses import replace

    result = SweepResult("bus_bandwidth_bytes_per_us")
    with shared_service(options) as options:
        for bandwidth in bandwidths:
            platform = replace(
                base_platform,
                interconnect=Interconnect(
                    bandwidth_bytes_per_us=bandwidth,
                    latency_us=base_platform.interconnect.latency_us,
                ),
            )
            point = _measure(htg, platform, options)
            point.value = bandwidth
            result.points.append(point)
    return result


def render_sweep(result: SweepResult) -> str:
    """Aligned text table of one sweep."""
    lines = [
        f"sweep over {result.parameter}",
        f"{'value':>12} {'hetero':>9} {'homo':>9} {'limit':>9}",
    ]
    for point in result.points:
        lines.append(
            f"{point.value:>12g} {point.heterogeneous_speedup:>8.2f}x "
            f"{point.homogeneous_speedup:>8.2f}x {point.theoretical_limit:>8.2f}x"
        )
    return "\n".join(lines)
