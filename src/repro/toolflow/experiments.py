"""Reproduction harness for every table and figure of the paper.

* Figures 7(a)/7(b): platform configuration (A), scenarios I/II —
  per-benchmark simulated speedups of the homogeneous baseline [6] vs.
  the new heterogeneous approach, with the theoretical limit.
* Figures 8(a)/8(b): the same for platform configuration (B).
* Table I: ILP statistics (parallelization time, #ILPs, #variables,
  #constraints) per benchmark for both approaches plus the ratio block.

Results are plain dataclasses; :mod:`repro.toolflow.report` renders them
as the text tables the benchmark harness prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench_suite import benchmark_names, get_benchmark
from repro.cfront import ir, parse_c_source
from repro.cfront.defuse import compute_call_summaries
from repro.core.parallelize import (
    HeterogeneousParallelizer,
    HomogeneousParallelizer,
    ParallelizeOptions,
    ParallelizeResult,
)
from repro.htg.builder import BuildOptions, build_htg
from repro.htg.graph import HTG
from repro.ilp.stats import StatsRatios, StatsSummary
from repro.platforms import config_a, config_b
from repro.platforms.description import Platform
from repro.simulator.engine import SimOptions
from repro.simulator.run import evaluate_solution
from repro.timing.estimator import annotate_costs

#: figure id -> (platform factory, scenario)
FIGURES: Dict[str, Tuple[Callable[[str], Platform], str]] = {
    "7a": (config_a, "accelerator"),
    "7b": (config_a, "slower-cores"),
    "8a": (config_b, "accelerator"),
    "8b": (config_b, "slower-cores"),
}


@dataclass
class BenchmarkRun:
    """One (benchmark, approach, platform) measurement."""

    benchmark: str
    approach: str
    speedup: float
    estimated_speedup: float
    sequential_us: float
    parallel_us: float
    stats: StatsSummary
    wall_seconds: float
    num_tasks: int


@dataclass
class FigureResult:
    """All measurements of one paper figure."""

    figure: str
    platform_name: str
    scenario: str
    theoretical_limit: float
    runs: Dict[str, Dict[str, BenchmarkRun]] = field(default_factory=dict)

    def speedups(self, approach: str) -> Dict[str, float]:
        return {
            name: by_approach[approach].speedup
            for name, by_approach in self.runs.items()
            if approach in by_approach
        }

    def average_speedup(self, approach: str) -> float:
        values = list(self.speedups(approach).values())
        return sum(values) / len(values) if values else 0.0


@dataclass
class Table1Row:
    """One benchmark's row of Table I."""

    benchmark: str
    homogeneous: StatsSummary
    heterogeneous: StatsSummary

    @property
    def factor(self) -> StatsRatios:
        return self.heterogeneous.ratio_to(self.homogeneous)


@dataclass
class Table1Result:
    rows: List[Table1Row] = field(default_factory=list)

    def averages(self) -> Optional[Table1Row]:
        if not self.rows:
            return None
        n = len(self.rows)

        def avg(summaries: List[StatsSummary]) -> StatsSummary:
            return StatsSummary(
                num_ilps=round(sum(s.num_ilps for s in summaries) / n),
                total_variables=round(sum(s.total_variables for s in summaries) / n),
                total_constraints=round(
                    sum(s.total_constraints for s in summaries) / n
                ),
                total_solve_seconds=sum(s.total_solve_seconds for s in summaries) / n,
            )

        return Table1Row(
            "average",
            avg([r.homogeneous for r in self.rows]),
            avg([r.heterogeneous for r in self.rows]),
        )


# ---------------------------------------------------------------------------
# Preparation cache: parse + profile + AHTG are platform-scenario independent
# (both evaluation platforms have four cores), so share them across runs.
# ---------------------------------------------------------------------------

_PREP_CACHE: Dict[Tuple[str, int], Tuple[ir.Program, HTG]] = {}


def prepare_benchmark(
    name: str,
    total_cores: int = 4,
    build_options: Optional[BuildOptions] = None,
) -> Tuple[ir.Program, HTG]:
    """Parse, profile and build the AHTG of a benchmark (cached)."""
    key = (name, total_cores)
    if build_options is None and key in _PREP_CACHE:
        return _PREP_CACHE[key]
    bench = get_benchmark(name)
    program = parse_c_source(bench.source)
    func = program.entry("main")
    summaries = compute_call_summaries(program)
    cost_db = annotate_costs(program, func)
    htg = build_htg(
        program,
        func,
        cost_db=cost_db,
        options=build_options or BuildOptions(),
        total_cores=total_cores,
        summaries=summaries,
    )
    if build_options is None:
        _PREP_CACHE[key] = (program, htg)
    return program, htg


_RUN_CACHE: Dict[Tuple[str, str, str], BenchmarkRun] = {}


def run_benchmark(
    name: str,
    platform: Platform,
    approach: str = "heterogeneous",
    parallelize_options: Optional[ParallelizeOptions] = None,
    sim_options: Optional[SimOptions] = None,
    build_options: Optional[BuildOptions] = None,
) -> BenchmarkRun:
    """Parallelize and simulate one benchmark on one platform.

    Default-option runs are cached per (benchmark, platform, approach):
    Table I reuses the platform-(A) runs of Figure 7(a) as the paper does.
    """
    cacheable = (
        parallelize_options is None and sim_options is None and build_options is None
    )
    cache_key = (name, platform.name, approach)
    if cacheable and cache_key in _RUN_CACHE:
        return _RUN_CACHE[cache_key]
    run = _run_benchmark_uncached(
        name, platform, approach, parallelize_options, sim_options, build_options
    )
    if cacheable:
        _RUN_CACHE[cache_key] = run
    return run


def _run_benchmark_uncached(
    name: str,
    platform: Platform,
    approach: str,
    parallelize_options: Optional[ParallelizeOptions],
    sim_options: Optional[SimOptions],
    build_options: Optional[BuildOptions],
) -> BenchmarkRun:
    _program, htg = prepare_benchmark(
        name, platform.total_cores, build_options=build_options
    )
    if approach == "heterogeneous":
        parallelizer = HeterogeneousParallelizer(platform, parallelize_options)
    elif approach == "homogeneous":
        parallelizer = HomogeneousParallelizer(platform, parallelize_options)
    else:
        raise ValueError(f"unknown approach {approach!r}")
    result = parallelizer.parallelize(htg)
    evaluation = evaluate_solution(result, sim_options)
    return BenchmarkRun(
        benchmark=name,
        approach=approach,
        speedup=evaluation.speedup,
        estimated_speedup=result.estimated_speedup,
        sequential_us=evaluation.sequential_us,
        parallel_us=evaluation.parallel_us,
        stats=result.stats.summary(),
        wall_seconds=result.wall_seconds,
        num_tasks=result.best.num_tasks,
    )


def run_figure(
    figure: str,
    benchmarks: Optional[Sequence[str]] = None,
    approaches: Sequence[str] = ("homogeneous", "heterogeneous"),
    parallelize_options: Optional[ParallelizeOptions] = None,
    sim_options: Optional[SimOptions] = None,
) -> FigureResult:
    """Regenerate one of Figures 7(a)/7(b)/8(a)/8(b)."""
    if figure not in FIGURES:
        raise KeyError(f"unknown figure {figure!r}; choose from {sorted(FIGURES)}")
    factory, scenario = FIGURES[figure]
    platform = factory(scenario)
    result = FigureResult(
        figure=figure,
        platform_name=platform.name,
        scenario=scenario,
        theoretical_limit=platform.theoretical_speedup(),
    )
    for name in benchmarks or benchmark_names():
        result.runs[name] = {}
        for approach in approaches:
            result.runs[name][approach] = run_benchmark(
                name,
                platform,
                approach,
                parallelize_options=parallelize_options,
                sim_options=sim_options,
            )
    return result


def run_table1(
    benchmarks: Optional[Sequence[str]] = None,
    parallelize_options: Optional[ParallelizeOptions] = None,
) -> Table1Result:
    """Regenerate Table I (ILP statistics, platform configuration (A))."""
    platform = config_a("accelerator")
    table = Table1Result()
    for name in benchmarks or benchmark_names():
        homo = run_benchmark(
            name, platform, "homogeneous", parallelize_options=parallelize_options
        )
        hetero = run_benchmark(
            name, platform, "heterogeneous", parallelize_options=parallelize_options
        )
        table.rows.append(Table1Row(name, homo.stats, hetero.stats))
    return table
