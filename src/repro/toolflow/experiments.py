"""Reproduction harness for every table and figure of the paper.

* Figures 7(a)/7(b): platform configuration (A), scenarios I/II —
  per-benchmark simulated speedups of the homogeneous baseline [6] vs.
  the new heterogeneous approach, with the theoretical limit.
* Figures 8(a)/8(b): the same for platform configuration (B).
* Table I: ILP statistics (parallelization time, #ILPs, #variables,
  #constraints) per benchmark for both approaches plus the ratio block.

Results are plain dataclasses; :mod:`repro.toolflow.report` renders them
as the text tables the benchmark harness prints.

Every multi-cell entry point (:func:`run_figure`, :func:`run_table1`,
:func:`run_cells`) executes its benchmark×approach×platform cells as
concurrent :class:`repro.core.parallelize.ParallelizeSession` runs
against **one** shared :class:`repro.ilp.service.SolverService`: one
process pool spun up once, one in-memory memo table, one on-disk cache,
and one global solve queue in which the ILPs of all cells interleave
(largest-first, batched — see :mod:`repro.ilp.service`). At ``jobs=1``
the cells degenerate to the exact serial per-cell execution order, and
results are bit-identical for any configuration either way. The shared
run's telemetry is attached to the result as a
:class:`repro.ilp.stats.SuiteStats`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench_suite import benchmark_names, get_benchmark
from repro.cfront import ir, parse_c_source
from repro.cfront.defuse import compute_call_summaries
from repro.core.parallelize import (
    HeterogeneousParallelizer,
    HomogeneousParallelizer,
    ParallelizeOptions,
    ParallelizeResult,
    shared_service,
)
from repro.core.schedule import drive
from repro.htg.builder import BuildOptions, build_htg
from repro.htg.graph import HTG
from repro.ilp.stats import StatsRatios, StatsSummary, SuiteStats
from repro.platforms import config_a, config_b
from repro.platforms.description import Platform
from repro.simulator.engine import SimOptions
from repro.simulator.run import evaluate_solution
from repro.timing.estimator import annotate_costs

#: figure id -> (platform factory, scenario)
FIGURES: Dict[str, Tuple[Callable[[str], Platform], str]] = {
    "7a": (config_a, "accelerator"),
    "7b": (config_a, "slower-cores"),
    "8a": (config_b, "accelerator"),
    "8b": (config_b, "slower-cores"),
}


@dataclass
class BenchmarkRun:
    """One (benchmark, approach, platform) measurement."""

    benchmark: str
    approach: str
    speedup: float
    estimated_speedup: float
    sequential_us: float
    parallel_us: float
    stats: StatsSummary
    wall_seconds: float
    num_tasks: int
    #: Certifier wall time and finding count when the run was executed
    #: with ``ParallelizeOptions.verify`` (0/0 otherwise).
    verify_seconds: float = 0.0
    verify_diagnostics: int = 0


@dataclass
class FigureResult:
    """All measurements of one paper figure."""

    figure: str
    platform_name: str
    scenario: str
    theoretical_limit: float
    runs: Dict[str, Dict[str, BenchmarkRun]] = field(default_factory=dict)
    #: Shared-service telemetry of the suite run that produced the cells
    #: (``None`` when every cell came out of the run cache).
    suite: Optional[SuiteStats] = None

    def speedups(self, approach: str) -> Dict[str, float]:
        return {
            name: by_approach[approach].speedup
            for name, by_approach in self.runs.items()
            if approach in by_approach
        }

    def average_speedup(self, approach: str) -> float:
        values = list(self.speedups(approach).values())
        return sum(values) / len(values) if values else 0.0


@dataclass
class Table1Row:
    """One benchmark's row of Table I."""

    benchmark: str
    homogeneous: StatsSummary
    heterogeneous: StatsSummary

    @property
    def factor(self) -> StatsRatios:
        return self.heterogeneous.ratio_to(self.homogeneous)


@dataclass
class Table1Result:
    rows: List[Table1Row] = field(default_factory=list)
    #: Shared-service telemetry of the suite run that produced the cells
    #: (``None`` when every cell came out of the run cache).
    suite: Optional[SuiteStats] = None

    def averages(self) -> Optional[Table1Row]:
        if not self.rows:
            return None
        n = len(self.rows)

        def avg(summaries: List[StatsSummary]) -> StatsSummary:
            return StatsSummary(
                num_ilps=round(sum(s.num_ilps for s in summaries) / n),
                total_variables=round(sum(s.total_variables for s in summaries) / n),
                total_constraints=round(
                    sum(s.total_constraints for s in summaries) / n
                ),
                total_solve_seconds=sum(s.total_solve_seconds for s in summaries) / n,
            )

        return Table1Row(
            "average",
            avg([r.homogeneous for r in self.rows]),
            avg([r.heterogeneous for r in self.rows]),
        )


# ---------------------------------------------------------------------------
# Preparation cache: parse + profile + AHTG are platform-scenario independent
# (both evaluation platforms have four cores), so share them across runs.
# ---------------------------------------------------------------------------

_PREP_CACHE: Dict[Tuple[str, int], Tuple[ir.Program, HTG]] = {}


def prepare_benchmark(
    name: str,
    total_cores: int = 4,
    build_options: Optional[BuildOptions] = None,
) -> Tuple[ir.Program, HTG]:
    """Parse, profile and build the AHTG of a benchmark (cached)."""
    key = (name, total_cores)
    if build_options is None and key in _PREP_CACHE:
        return _PREP_CACHE[key]
    bench = get_benchmark(name)
    program = parse_c_source(bench.source)
    func = program.entry("main")
    summaries = compute_call_summaries(program)
    cost_db = annotate_costs(program, func)
    htg = build_htg(
        program,
        func,
        cost_db=cost_db,
        options=build_options or BuildOptions(),
        total_cores=total_cores,
        summaries=summaries,
    )
    if build_options is None:
        _PREP_CACHE[key] = (program, htg)
    return program, htg


#: Default-option run memo. Keyed on the *content fingerprint* of the
#: platform, not its display name: two :class:`Platform` objects may share
#: a name (e.g. a hand-tweaked copy of ``config-a``) while differing in
#: class specs, and a name-based key would silently serve one platform's
#: results for the other.
_RUN_CACHE: Dict[Tuple[str, str, str], BenchmarkRun] = {}


def _run_cache_key(
    name: str, platform: Platform, approach: str
) -> Tuple[str, str, str]:
    return (name, platform.fingerprint(), approach)


def _make_parallelizer(
    approach: str, platform: Platform, options: Optional[ParallelizeOptions]
):
    if approach == "heterogeneous":
        return HeterogeneousParallelizer(platform, options)
    if approach == "homogeneous":
        return HomogeneousParallelizer(platform, options)
    raise ValueError(f"unknown approach {approach!r}")


def _make_run(
    name: str,
    approach: str,
    result: ParallelizeResult,
    sim_options: Optional[SimOptions],
    verify: bool = False,
) -> BenchmarkRun:
    evaluation = evaluate_solution(result, sim_options)
    verify_seconds = 0.0
    verify_diagnostics = 0
    if verify:
        from repro.analysis.certifier import certify_run

        report = certify_run(
            result,
            evaluation=evaluation,
            subject={"benchmark": name, "approach": approach,
                     "platform": result.platform.name},
        )
        verify_seconds = report.total_seconds
        verify_diagnostics = len(report.diagnostics)
    return BenchmarkRun(
        benchmark=name,
        approach=approach,
        speedup=evaluation.speedup,
        estimated_speedup=result.estimated_speedup,
        sequential_us=evaluation.sequential_us,
        parallel_us=evaluation.parallel_us,
        stats=result.stats.summary(),
        wall_seconds=result.wall_seconds,
        num_tasks=result.best.num_tasks,
        verify_seconds=verify_seconds,
        verify_diagnostics=verify_diagnostics,
    )


def run_benchmark(
    name: str,
    platform: Platform,
    approach: str = "heterogeneous",
    parallelize_options: Optional[ParallelizeOptions] = None,
    sim_options: Optional[SimOptions] = None,
    build_options: Optional[BuildOptions] = None,
) -> BenchmarkRun:
    """Parallelize and simulate one benchmark on one platform.

    Default-option runs are cached per (benchmark, platform fingerprint,
    approach): Table I reuses the platform-(A) runs of Figure 7(a) as the
    paper does. A shared solver service injected via
    ``parallelize_options.service`` is honored by the underlying
    :meth:`~repro.core.parallelize._BaseParallelizer.parallelize` call.
    """
    cacheable = (
        parallelize_options is None and sim_options is None and build_options is None
    )
    cache_key = _run_cache_key(name, platform, approach)
    if cacheable and cache_key in _RUN_CACHE:
        return _RUN_CACHE[cache_key]
    run = _run_benchmark_uncached(
        name, platform, approach, parallelize_options, sim_options, build_options
    )
    if cacheable:
        _RUN_CACHE[cache_key] = run
    return run


def _run_benchmark_uncached(
    name: str,
    platform: Platform,
    approach: str,
    parallelize_options: Optional[ParallelizeOptions],
    sim_options: Optional[SimOptions],
    build_options: Optional[BuildOptions],
) -> BenchmarkRun:
    _program, htg = prepare_benchmark(
        name, platform.total_cores, build_options=build_options
    )
    parallelizer = _make_parallelizer(approach, platform, parallelize_options)
    result = parallelizer.parallelize(htg)
    verify = parallelize_options is not None and parallelize_options.verify
    return _make_run(name, approach, result, sim_options, verify=verify)


#: One experiment cell: (benchmark name, platform, approach).
Cell = Tuple[str, Platform, str]


def run_cells(
    cells: Sequence[Cell],
    parallelize_options: Optional[ParallelizeOptions] = None,
    sim_options: Optional[SimOptions] = None,
) -> Tuple[Dict[Tuple[str, str, str], BenchmarkRun], Optional[SuiteStats]]:
    """Run many (benchmark, platform, approach) cells against one service.

    Every cell becomes a :class:`~repro.core.parallelize.ParallelizeSession`
    against a single shared :class:`~repro.ilp.service.SolverService` (one
    pool, one memo table, one on-disk cache) and all sessions are drained
    together by :func:`~repro.core.schedule.drive` — the ILPs of different
    cells interleave in one global largest-first batch queue, so no worker
    idles at one run's level barrier while another run has solves ready.
    Simulation/evaluation happens afterwards in the original cell order,
    keeping every result bit-identical to serial per-cell execution.

    Returns the runs keyed by ``(name, platform fingerprint, approach)``
    plus a :class:`SuiteStats` snapshot (``None`` when every cell was
    served from the default-option run cache and no service was needed).
    Default-option runs are fed into / served from the same run cache
    :func:`run_benchmark` uses.
    """
    cacheable = parallelize_options is None and sim_options is None
    runs: Dict[Tuple[str, str, str], BenchmarkRun] = {}
    pending: List[Tuple[Tuple[str, str, str], str, Platform, str]] = []
    queued = set()
    for name, platform, approach in cells:
        key = _run_cache_key(name, platform, approach)
        if key in queued:
            continue
        if cacheable and key in _RUN_CACHE:
            runs[key] = _RUN_CACHE[key]
            continue
        queued.add(key)
        pending.append((key, name, platform, approach))
    if not pending:
        return runs, None

    start = time.perf_counter()
    with shared_service(parallelize_options) as options:
        service = options.service
        assert service is not None
        sessions = []
        for key, name, platform, approach in pending:
            _program, htg = prepare_benchmark(name, platform.total_cores)
            parallelizer = _make_parallelizer(approach, platform, options)
            sessions.append(
                (key, name, approach, parallelizer.start_session(htg, service))
            )
        drive([entry[3] for entry in sessions], service)
        pool = service.pool_stats()
        verify = parallelize_options is not None and parallelize_options.verify
        for key, name, approach, session in sessions:
            run = _make_run(
                name, approach, session.result, sim_options, verify=verify
            )
            runs[key] = run
            if cacheable:
                _RUN_CACHE[key] = run
    suite = SuiteStats(
        wall_seconds=time.perf_counter() - start,
        cells=len(pending),
        pool=pool,
    )
    return runs, suite


def run_figure(
    figure: str,
    benchmarks: Optional[Sequence[str]] = None,
    approaches: Sequence[str] = ("homogeneous", "heterogeneous"),
    parallelize_options: Optional[ParallelizeOptions] = None,
    sim_options: Optional[SimOptions] = None,
) -> FigureResult:
    """Regenerate one of Figures 7(a)/7(b)/8(a)/8(b)."""
    if figure not in FIGURES:
        raise KeyError(f"unknown figure {figure!r}; choose from {sorted(FIGURES)}")
    factory, scenario = FIGURES[figure]
    platform = factory(scenario)
    result = FigureResult(
        figure=figure,
        platform_name=platform.name,
        scenario=scenario,
        theoretical_limit=platform.theoretical_speedup(),
    )
    names = list(benchmarks or benchmark_names())
    cells: List[Cell] = [
        (name, platform, approach) for name in names for approach in approaches
    ]
    runs, result.suite = run_cells(
        cells, parallelize_options=parallelize_options, sim_options=sim_options
    )
    for name in names:
        result.runs[name] = {
            approach: runs[_run_cache_key(name, platform, approach)]
            for approach in approaches
        }
    return result


def run_table1(
    benchmarks: Optional[Sequence[str]] = None,
    parallelize_options: Optional[ParallelizeOptions] = None,
) -> Table1Result:
    """Regenerate Table I (ILP statistics, platform configuration (A))."""
    platform = config_a("accelerator")
    table = Table1Result()
    names = list(benchmarks or benchmark_names())
    cells: List[Cell] = [
        (name, platform, approach)
        for name in names
        for approach in ("homogeneous", "heterogeneous")
    ]
    runs, table.suite = run_cells(cells, parallelize_options=parallelize_options)
    for name in names:
        homo = runs[_run_cache_key(name, platform, "homogeneous")]
        hetero = runs[_run_cache_key(name, platform, "heterogeneous")]
        table.rows.append(Table1Row(name, homo.stats, hetero.stats))
    return table
