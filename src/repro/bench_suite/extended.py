"""Extended benchmark kernels (beyond the paper's evaluation set).

Three additional DSP/embedded kernels exercising analysis corners the
UTDSP-style set does not cover:

* **lms_adaptive** — LMS adaptive FIR: the weight vector carries across
  samples (array recurrence the dependence test must reject) while the
  inner dot products are reductions;
* **histogram** — indirect subscripts (``bins[(int)v]``): non-affine
  writes must classify as serial (conservative correctness);
* **cholesky** — in-place triangular factorization: triangular loop
  bounds depend on outer indices (non-constant trip counts) and the
  update has true cross-iteration dependences.

They are not part of the paper's figures; the test suite uses them to
harden the frontend, and they are available to users via
``get_extended_benchmark``.
"""

from typing import Dict

from repro.bench_suite.registry import Benchmark

LMS_ADAPTIVE = r"""
/* lms adaptive filter: weights adapt per sample (carried array). */
#define NTAPS 16
#define NSAMP 512

float x[NSAMP + NTAPS];
float d[NSAMP];
float w[NTAPS];
float e[NSAMP];
float checksum;

void main(void) {
    int n;
    int k;
    float yhat;
    float err;
    for (n = 0; n < NSAMP + NTAPS; n++) {
        x[n] = sin(0.05f * n);
    }
    for (n = 0; n < NSAMP; n++) {
        d[n] = sin(0.05f * (n + 2));
    }
    for (k = 0; k < NTAPS; k++) {
        w[k] = 0.0f;
    }
    for (n = 0; n < NSAMP; n++) {
        yhat = 0.0f;
        for (k = 0; k < NTAPS; k++) {
            yhat = yhat + w[k] * x[n + k];
        }
        err = d[n] - yhat;
        e[n] = err;
        for (k = 0; k < NTAPS; k++) {
            w[k] = w[k] + 0.01f * err * x[n + k];
        }
    }
    checksum = 0.0f;
    for (n = 0; n < NSAMP; n++) {
        checksum = checksum + e[n] * e[n];
    }
}
"""

HISTOGRAM = r"""
/* histogram: indirect writes (data-dependent bin index). */
#define NSAMP 2048
#define NBINS 64

float data[NSAMP];
float bins[NBINS];
float checksum;

void main(void) {
    int i;
    int b;
    float v;
    for (i = 0; i < NSAMP; i++) {
        data[i] = 32.0f + 24.0f * sin(0.01f * i) + 7.0f * sin(0.13f * i);
    }
    for (b = 0; b < NBINS; b++) {
        bins[b] = 0.0f;
    }
    for (i = 0; i < NSAMP; i++) {
        b = (int)data[i];
        if (b < 0) {
            b = 0;
        }
        if (b > NBINS - 1) {
            b = NBINS - 1;
        }
        bins[b] = bins[b] + 1.0f;
    }
    checksum = 0.0f;
    for (b = 0; b < NBINS; b++) {
        checksum = checksum + bins[b] * b;
    }
}
"""

CHOLESKY = r"""
/* cholesky: in-place factorization of a small SPD matrix. */
#define DIM 24

float a[DIM][DIM];
float checksum;

void main(void) {
    int i;
    int j;
    int k;
    float sum;
    for (i = 0; i < DIM; i++) {
        for (j = 0; j < DIM; j++) {
            if (i == j) {
                a[i][j] = DIM + 1.0f;
            } else {
                a[i][j] = 1.0f / (1.0f + i + j);
            }
        }
    }
    for (j = 0; j < DIM; j++) {
        sum = a[j][j];
        for (k = 0; k < j; k++) {
            sum = sum - a[j][k] * a[j][k];
        }
        a[j][j] = sqrt(sum);
        for (i = j + 1; i < DIM; i++) {
            sum = a[i][j];
            for (k = 0; k < j; k++) {
                sum = sum - a[i][k] * a[j][k];
            }
            a[i][j] = sum / a[j][j];
        }
    }
    checksum = 0.0f;
    for (i = 0; i < DIM; i++) {
        checksum = checksum + a[i][i];
    }
}
"""

EXTENDED_BENCHMARKS: Dict[str, Benchmark] = {
    "lms_adaptive": Benchmark(
        "lms_adaptive", LMS_ADAPTIVE, "serial",
        "LMS adaptive FIR filter (carried weight vector)", 100,
    ),
    "histogram": Benchmark(
        "histogram", HISTOGRAM, "serial",
        "histogram with data-dependent bin indices", 101,
    ),
    "cholesky": Benchmark(
        "cholesky", CHOLESKY, "serial",
        "in-place Cholesky factorization (triangular loops)", 102,
    ),
}


def get_extended_benchmark(name: str) -> Benchmark:
    try:
        return EXTENDED_BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown extended benchmark {name!r}; "
            f"available: {sorted(EXTENDED_BENCHMARKS)}"
        ) from None
