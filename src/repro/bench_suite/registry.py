"""Benchmark registry: names, sources and parallelism metadata."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.bench_suite import sources


@dataclass(frozen=True)
class Benchmark:
    """One benchmark kernel.

    ``character`` describes the dominant parallelism structure, used by
    tests to assert the analyses classify the kernels correctly:

    * ``data-parallel`` — a dominant provably parallel loop;
    * ``block-parallel`` — independent blocks/channels with serial inner
      recurrences;
    * ``serial`` — inherently sequential main loop (offload-only).
    """

    name: str
    source: str
    character: str
    description: str
    #: paper figure ordering (matches the x-axes of Figures 7/8)
    paper_order: int


BENCHMARKS: Dict[str, Benchmark] = {
    b.name: b
    for b in [
        Benchmark(
            "adpcm_enc",
            sources.ADPCM_ENC,
            "block-parallel",
            "4-bit adaptive differential PCM encoder, per-block predictor",
            0,
        ),
        Benchmark(
            "bound_value",
            sources.BOUND_VALUE,
            "data-parallel",
            "Jacobi relaxation of a 1-D boundary value problem",
            1,
        ),
        Benchmark(
            "compress",
            sources.COMPRESS,
            "data-parallel",
            "8x8 block-DCT image compression with thresholding",
            2,
        ),
        Benchmark(
            "edge_detect",
            sources.EDGE_DETECT,
            "data-parallel",
            "Sobel gradient edge detection",
            3,
        ),
        Benchmark(
            "filterbank",
            sources.FILTERBANK,
            "data-parallel",
            "8-band FIR filter bank",
            4,
        ),
        Benchmark(
            "fir_256",
            sources.FIR_256,
            "data-parallel",
            "256-tap FIR filter",
            5,
        ),
        Benchmark(
            "iir_4",
            sources.IIR_4,
            "block-parallel",
            "4th-order IIR (cascaded biquads), independent channels",
            6,
        ),
        Benchmark(
            "latnrm_32",
            sources.LATNRM_32,
            "serial",
            "32nd-order normalized lattice filter, single stream",
            7,
        ),
        Benchmark(
            "mult_10",
            sources.MULT_10,
            "data-parallel",
            "batch of independent 10x10 matrix multiplications",
            8,
        ),
        Benchmark(
            "spectral",
            sources.SPECTRAL,
            "data-parallel",
            "autocorrelation + periodogram power-spectrum estimation",
            9,
        ),
    ]
}


def benchmark_names() -> List[str]:
    """Benchmark names in the paper's figure order."""
    return [b.name for b in sorted(BENCHMARKS.values(), key=lambda b: b.paper_order)]


def get_benchmark(name: str) -> Benchmark:
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {benchmark_names()}"
        ) from None
