"""ANSI-C sources of the benchmark kernels.

Every kernel is a complete, self-contained program in the supported C
subset (no ``#include``; math builtins like ``cos``/``sqrt``/``fabs`` are
used directly; data is initialized in loops, never with initializer
lists). Each ``main`` produces a ``checksum`` global so tests can verify
the kernels compute what they claim.

Where the original UTDSP kernel is inherently single-stream, the variant
here processes independent blocks/channels/batches — the standard
streaming formulation of the same kernel — so that iteration-level
parallelism exists to extract; DESIGN.md documents these choices.
"""

FIR_256 = r"""
/* fir 256: 256-tap finite impulse response filter over a sample window. */
#define NOUT 64
#define NTAP 256

float x[NOUT + NTAP];
float h[NTAP];
float y[NOUT];
float checksum;

void main(void) {
    int i;
    int j;
    float sum;
    for (i = 0; i < NOUT + NTAP; i++) {
        x[i] = 0.001f * i - 0.05f;
    }
    for (i = 0; i < NTAP; i++) {
        h[i] = 1.0f / (i + 1);
    }
    for (i = 0; i < NOUT; i++) {
        sum = 0.0f;
        for (j = 0; j < NTAP; j++) {
            sum = sum + x[i + j] * h[j];
        }
        y[i] = sum;
    }
    checksum = 0.0f;
    for (i = 0; i < NOUT; i++) {
        checksum = checksum + y[i];
    }
}
"""

ADPCM_ENC = r"""
/* adpcm encoder: blockwise adaptive differential PCM (4-bit), with the
 * predictor reset per block (streaming formulation: blocks independent). */
#define NBLK 16
#define BLK 128

float pcm[NBLK * BLK];
float code[NBLK * BLK];
float checksum;

void main(void) {
    int b;
    int i;
    float valpred;
    float step;
    float delta;
    float sign;
    float q;
    for (i = 0; i < NBLK * BLK; i++) {
        pcm[i] = 100.0f * sin(0.03f * i) + 20.0f * sin(0.3f * i);
    }
    for (b = 0; b < NBLK; b++) {
        valpred = 0.0f;
        step = 4.0f;
        for (i = 0; i < BLK; i++) {
            delta = pcm[b * BLK + i] - valpred;
            sign = 1.0f;
            if (delta < 0.0f) {
                sign = -1.0f;
                delta = -delta;
            }
            q = delta / step;
            if (q > 7.0f) {
                q = 7.0f;
            }
            q = floor(q);
            code[b * BLK + i] = sign * q;
            valpred = valpred + sign * q * step;
            if (q >= 4.0f) {
                step = step * 1.5f;
            } else {
                step = step * 0.8f;
            }
            if (step < 1.0f) {
                step = 1.0f;
            }
            if (step > 512.0f) {
                step = 512.0f;
            }
        }
    }
    checksum = 0.0f;
    for (i = 0; i < NBLK * BLK; i++) {
        checksum = checksum + code[i];
    }
}
"""

BOUND_VALUE = r"""
/* boundary value problem: Jacobi relaxation of u'' = f on [0,1] with
 * fixed boundary values (the "physical application domain" benchmark). */
#define NPTS 768
#define SWEEPS 8

float u[NPTS];
float unew[NPTS];
float f[NPTS];
float checksum;

void main(void) {
    int i;
    int t;
    for (i = 0; i < NPTS; i++) {
        u[i] = 0.0f;
        f[i] = 0.0001f * i;
    }
    u[0] = 1.0f;
    u[NPTS - 1] = 2.0f;
    unew[0] = 1.0f;
    unew[NPTS - 1] = 2.0f;
    for (t = 0; t < SWEEPS; t++) {
        for (i = 1; i < NPTS - 1; i++) {
            unew[i] = 0.5f * (u[i - 1] + u[i + 1]) - 0.5f * f[i];
        }
        for (i = 1; i < NPTS - 1; i++) {
            u[i] = unew[i];
        }
    }
    checksum = 0.0f;
    for (i = 0; i < NPTS; i++) {
        checksum = checksum + u[i];
    }
}
"""

COMPRESS = r"""
/* compress: 8x8 block DCT image compression with coefficient
 * thresholding (rate reduction), blocks independent. */
#define DIM 48
#define BS 8
#define NBY 6

float img[DIM][DIM];
float coef[DIM][DIM];
float cosbl[BS][BS];
float checksum;

void main(void) {
    int by;
    int bx;
    int u;
    int v;
    int i;
    int j;
    float sum;
    float cu;
    float cv;
    for (i = 0; i < DIM; i++) {
        for (j = 0; j < DIM; j++) {
            img[i][j] = 128.0f + 64.0f * sin(0.1f * i) * cos(0.13f * j);
        }
    }
    for (i = 0; i < BS; i++) {
        for (j = 0; j < BS; j++) {
            cosbl[i][j] = cos((2.0f * i + 1.0f) * j * 3.14159265f / 16.0f);
        }
    }
    for (by = 0; by < NBY; by++) {
        for (bx = 0; bx < NBY; bx++) {
            for (u = 0; u < BS; u++) {
                for (v = 0; v < BS; v++) {
                    sum = 0.0f;
                    for (i = 0; i < BS; i++) {
                        for (j = 0; j < BS; j++) {
                            sum = sum + img[by * BS + i][bx * BS + j]
                                      * cosbl[i][u] * cosbl[j][v];
                        }
                    }
                    cu = 1.0f;
                    if (u == 0) {
                        cu = 0.70710678f;
                    }
                    cv = 1.0f;
                    if (v == 0) {
                        cv = 0.70710678f;
                    }
                    sum = 0.25f * cu * cv * sum;
                    if (fabs(sum) < 4.0f) {
                        sum = 0.0f;
                    }
                    coef[by * BS + u][bx * BS + v] = sum;
                }
            }
        }
    }
    checksum = 0.0f;
    for (i = 0; i < DIM; i++) {
        for (j = 0; j < DIM; j++) {
            checksum = checksum + coef[i][j];
        }
    }
}
"""

EDGE_DETECT = r"""
/* edge detect: Sobel gradient + threshold over a grayscale image. */
#define H 56
#define W 56

float img[H][W];
float out[H][W];
float checksum;

void main(void) {
    int i;
    int j;
    float gx;
    float gy;
    float mag;
    for (i = 0; i < H; i++) {
        for (j = 0; j < W; j++) {
            img[i][j] = 100.0f + 50.0f * sin(0.2f * i + 0.1f * j);
            out[i][j] = 0.0f;
        }
    }
    for (i = 1; i < H - 1; i++) {
        for (j = 1; j < W - 1; j++) {
            gx = img[i - 1][j + 1] + 2.0f * img[i][j + 1] + img[i + 1][j + 1]
               - img[i - 1][j - 1] - 2.0f * img[i][j - 1] - img[i + 1][j - 1];
            gy = img[i + 1][j - 1] + 2.0f * img[i + 1][j] + img[i + 1][j + 1]
               - img[i - 1][j - 1] - 2.0f * img[i - 1][j] - img[i - 1][j + 1];
            mag = sqrt(gx * gx + gy * gy);
            if (mag > 80.0f) {
                out[i][j] = 255.0f;
            } else {
                out[i][j] = 0.0f;
            }
        }
    }
    checksum = 0.0f;
    for (i = 0; i < H; i++) {
        for (j = 0; j < W; j++) {
            checksum = checksum + out[i][j];
        }
    }
}
"""

FILTERBANK = r"""
/* filterbank: bank of FIR filters, one output stream per band. */
#define NBANK 8
#define NSAMP 256
#define NTAPS 32

float input[NSAMP + NTAPS];
float coeff[NBANK][NTAPS];
float bankout[NBANK][NSAMP];
float checksum;

void main(void) {
    int b;
    int n;
    int k;
    float acc;
    for (n = 0; n < NSAMP + NTAPS; n++) {
        input[n] = sin(0.02f * n) + 0.5f * sin(0.11f * n);
    }
    for (b = 0; b < NBANK; b++) {
        for (k = 0; k < NTAPS; k++) {
            coeff[b][k] = cos(0.05f * (b + 1) * k) / (k + 1);
        }
    }
    for (b = 0; b < NBANK; b++) {
        for (n = 0; n < NSAMP; n++) {
            acc = 0.0f;
            for (k = 0; k < NTAPS; k++) {
                acc = acc + input[n + k] * coeff[b][k];
            }
            bankout[b][n] = acc;
        }
    }
    checksum = 0.0f;
    for (b = 0; b < NBANK; b++) {
        for (n = 0; n < NSAMP; n++) {
            checksum = checksum + bankout[b][n];
        }
    }
}
"""

IIR_4 = r"""
/* iir 4: 4th-order IIR filter (two cascaded biquads) applied to
 * independent channels (multi-channel streaming formulation). */
#define NCHAN 8
#define NSAMP 1024

float input[NCHAN][NSAMP];
float output[NCHAN][NSAMP];
float checksum;

void main(void) {
    int c;
    int n;
    float w1a;
    float w2a;
    float w1b;
    float w2b;
    float t;
    float s;
    for (c = 0; c < NCHAN; c++) {
        for (n = 0; n < NSAMP; n++) {
            input[c][n] = sin(0.01f * (c + 1) * n);
        }
    }
    for (c = 0; c < NCHAN; c++) {
        w1a = 0.0f;
        w2a = 0.0f;
        w1b = 0.0f;
        w2b = 0.0f;
        for (n = 0; n < NSAMP; n++) {
            t = input[c][n] + 1.2f * w1a - 0.5f * w2a;
            s = t + 2.0f * w1a + w2a;
            w2a = w1a;
            w1a = t;
            t = s + 0.8f * w1b - 0.3f * w2b;
            s = t + 2.0f * w1b + w2b;
            w2b = w1b;
            w1b = t;
            output[c][n] = 0.05f * s;
        }
    }
    checksum = 0.0f;
    for (c = 0; c < NCHAN; c++) {
        for (n = 0; n < NSAMP; n++) {
            checksum = checksum + output[c][n];
        }
    }
}
"""

LATNRM_32 = r"""
/* latnrm 32: 32nd-order normalized lattice filter, single stream —
 * inherently sequential over samples and stages (high communication). */
#define NORDER 32
#define NSAMP 1024

float input[NSAMP];
float output[NSAMP];
float kcoef[NORDER];
float state[NORDER];
float checksum;

void main(void) {
    int n;
    int s;
    float top;
    float bot;
    float tmp;
    for (n = 0; n < NSAMP; n++) {
        input[n] = sin(0.05f * n) + 0.3f * sin(0.31f * n);
    }
    for (s = 0; s < NORDER; s++) {
        kcoef[s] = 0.5f / (s + 1);
        state[s] = 0.0f;
    }
    for (n = 0; n < NSAMP; n++) {
        top = input[n];
        for (s = 0; s < NORDER; s++) {
            tmp = state[s];
            bot = tmp + kcoef[s] * top;
            top = top - kcoef[s] * bot;
            state[s] = bot;
        }
        output[n] = top;
    }
    checksum = 0.0f;
    for (n = 0; n < NSAMP; n++) {
        checksum = checksum + output[n];
    }
}
"""

MULT_10 = r"""
/* mult 10: batch of independent 10x10 matrix multiplications. */
#define NMAT 64
#define DIM 10

float a[NMAT][DIM][DIM];
float b[NMAT][DIM][DIM];
float c[NMAT][DIM][DIM];
float checksum;

void main(void) {
    int m;
    int i;
    int j;
    int k;
    float sum;
    for (m = 0; m < NMAT; m++) {
        for (i = 0; i < DIM; i++) {
            for (j = 0; j < DIM; j++) {
                a[m][i][j] = 0.01f * (m + i + j);
                b[m][i][j] = 0.02f * (m + i) - 0.01f * j;
            }
        }
    }
    for (m = 0; m < NMAT; m++) {
        for (i = 0; i < DIM; i++) {
            for (j = 0; j < DIM; j++) {
                sum = 0.0f;
                for (k = 0; k < DIM; k++) {
                    sum = sum + a[m][i][k] * b[m][k][j];
                }
                c[m][i][j] = sum;
            }
        }
    }
    checksum = 0.0f;
    for (m = 0; m < NMAT; m++) {
        for (i = 0; i < DIM; i++) {
            for (j = 0; j < DIM; j++) {
                checksum = checksum + c[m][i][j];
            }
        }
    }
}
"""

SPECTRAL = r"""
/* spectral: power spectrum estimation — autocorrelation followed by a
 * cosine-transform periodogram (two communicating parallel stages). */
#define NSAMP 1024
#define NLAG 96
#define NFREQ 96

float x[NSAMP];
float r[NLAG];
float p[NFREQ];
float checksum;

void main(void) {
    int n;
    int k;
    int f;
    float acc;
    for (n = 0; n < NSAMP; n++) {
        x[n] = sin(0.07f * n) + 0.5f * sin(0.23f * n) + 0.25f * sin(0.41f * n);
    }
    for (k = 0; k < NLAG; k++) {
        acc = 0.0f;
        for (n = 0; n < NSAMP - NLAG; n++) {
            acc = acc + x[n] * x[n + k];
        }
        r[k] = acc / (NSAMP - NLAG);
    }
    for (f = 0; f < NFREQ; f++) {
        acc = r[0];
        for (k = 1; k < NLAG; k++) {
            acc = acc + 2.0f * r[k] * cos(3.14159265f * f * k / NFREQ);
        }
        p[f] = fabs(acc);
    }
    checksum = 0.0f;
    for (f = 0; f < NFREQ; f++) {
        checksum = checksum + p[f];
    }
}
"""
