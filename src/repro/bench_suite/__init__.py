"""UTDSP-style benchmark kernels.

Self-written ANSI-C kernels mirroring the computational structure of the
UTDSP benchmarks the paper evaluates (plus the boundary-value problem).
Each kernel is embedded as a source string with metadata describing its
expected parallelism character; all kernels parse with
:mod:`repro.cfront`, run to completion under the interpreter, and include
a self-check so the parallelizer's input is a *correct* program.
"""

from repro.bench_suite.registry import (
    BENCHMARKS,
    Benchmark,
    get_benchmark,
    benchmark_names,
)

__all__ = ["BENCHMARKS", "Benchmark", "benchmark_names", "get_benchmark"]
