"""Synthetic stress benchmarks: parametric wide-AHTG generators.

The paper's UTDSP-style kernels produce AHTGs whose hierarchical nodes
have at most a handful of children, so their per-node ILPs stay small.
The portfolio benchmarks need the opposite regime — one node with *many*
mutually independent children — because that is where branch-and-bound
enumeration blows up and an injected heuristic incumbent pays off.

:func:`wide_ahtg_source` emits a C program of ``blocks`` independent
first-order scalar recurrences (each loop is serial inside — the
dependence tests must reject chunking — but the loops are pairwise
independent, touching disjoint scalars), followed by a single checksum
combination. The AHTG then contains one node with ``2 * blocks + 1``
children and no cross-block dependences: the ILPPAR instance over it is
a pure slot-packing problem whose search space grows combinatorially
with ``blocks``.

Trip counts are varied per block (``base_iters`` scaled by a small
prime-stepped factor) so block costs are heterogeneous — uniform costs
would make most packings tie and the packing trivial.
"""

from __future__ import annotations

__all__ = ["wide_ahtg_source"]


def wide_ahtg_source(
    blocks: int = 12, base_iters: int = 64, pole: int = 1
) -> str:
    """C source with ``blocks`` independent serial-recurrence loops.

    ``pole > 1`` multiplies the trip count of block 0, turning it into a
    dominant critical-path "pole": the optimum then equals running the
    pole on the fastest class with every other block hidden in its
    shadow, which a list scheduler finds directly — the regime where an
    injected incumbent meets the critical-path lower bound and lets the
    warm-started exact solver terminate without search, while a cold
    solver still has to enumerate the packing tree.
    """
    if blocks < 1:
        raise ValueError(f"blocks must be >= 1, got {blocks}")
    lines = ["float checksum;", "", "void main(void) {", "    int i;"]
    for b in range(blocks):
        lines.append(f"    float s{b};")
    lines.append("")
    for b in range(blocks):
        iters = base_iters * (1 + (b * 3) % 7)
        if b == 0:
            iters = base_iters * pole
        coeff = 0.90 + 0.005 * (b % 9)
        lines.append(f"    s{b} = {float(b + 1)}f;")
        lines.append(
            f"    for (i = 1; i < {iters}; i++) "
            f"{{ s{b} = {coeff:.3f}f * s{b} + 0.1f; }}"
        )
    total = " + ".join(f"s{b}" for b in range(blocks))
    lines.append(f"    checksum = {total};")
    lines.append("}")
    return "\n".join(lines) + "\n"
